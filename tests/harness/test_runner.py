"""Tests for sweep execution: serial, parallel, cached, and failing."""

import pytest

from repro.harness import (
    MISS,
    ParallelRunner,
    ResultStore,
    SweepError,
    SweepPoint,
    SweepSpec,
    resolve_jobs,
)

ECHO_SPEC = SweepSpec(kind="selftest", axes={"payload": [1, 2, 3, 4, 5]})


def echoes(result):
    return [value["echo"] for value in result.values]


class TestSerialParallelEquivalence:
    def test_same_spec_same_results(self):
        serial = ParallelRunner(jobs=1).run(ECHO_SPEC)
        parallel = ParallelRunner(jobs=3).run(ECHO_SPEC)
        assert echoes(serial) == echoes(parallel) == [1, 2, 3, 4, 5]
        assert serial.points == parallel.points

    def test_parallel_executes_in_worker_processes(self):
        import os

        result = ParallelRunner(jobs=3, chunk_size=1).run(ECHO_SPEC)
        assert os.getpid() not in {value["pid"] for value in result.values}

    def test_accuracy_kind_bit_identical(self):
        spec = SweepSpec(
            kind="accuracy",
            axes={"app": ["em3d", "ocean"], "depth": [1, 2]},
            base={"iterations": 4},
        )
        serial = ParallelRunner(jobs=1).run(spec)
        parallel = ParallelRunner(jobs=2).run(spec)
        assert serial.values == parallel.values

    def test_duplicate_points_executed_once(self):
        points = SweepPoint.make("selftest", {"payload": 7}), SweepPoint.make(
            "selftest", {"payload": 7}
        )
        result = ParallelRunner(jobs=1).run(list(points))
        assert result.report.executed == 1
        assert len(result) == 2
        assert result.values[0] == result.values[1]


class TestCaching:
    def test_second_run_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        first = ParallelRunner(jobs=2, store=store).run(ECHO_SPEC)
        second = ParallelRunner(jobs=2, store=store).run(ECHO_SPEC)
        assert first.report.executed == 5 and first.report.cached == 0
        assert second.report.executed == 0 and second.report.cached == 5
        assert second.values == first.values

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        store = ResultStore(tmp_path)
        point = SweepPoint.make("selftest", {"payload": 1})
        store.store(point, {"echo": "stale", "pid": -1})
        result = ParallelRunner(store=store, refresh=True).run([point])
        assert result.report.executed == 1
        assert store.load(point)["echo"] == 1

    def test_partial_cache_runs_only_missing_points(self, tmp_path):
        store = ResultStore(tmp_path)
        ParallelRunner(store=store).run(ECHO_SPEC.points()[:2])
        result = ParallelRunner(store=store).run(ECHO_SPEC)
        assert result.report.cached == 2
        assert result.report.executed == 3
        assert echoes(result) == [1, 2, 3, 4, 5]


class TestFailures:
    def test_worker_crash_surfaces_as_error_not_hang(self):
        spec = SweepSpec(
            kind="selftest", axes={"payload": [1, 2]}, base={"behavior": "crash"}
        )
        with pytest.raises(SweepError, match="worker process died"):
            ParallelRunner(jobs=2).run(spec)

    def test_point_exception_names_the_point_serial(self):
        spec = SweepSpec(
            kind="selftest", axes={"payload": [9]}, base={"behavior": "error"}
        )
        with pytest.raises(SweepError, match="payload=9"):
            ParallelRunner(jobs=1).run(spec)

    def test_point_exception_names_the_point_parallel(self):
        spec = SweepSpec(
            kind="selftest", axes={"payload": [8, 9]}, base={"behavior": "error"}
        )
        with pytest.raises(SweepError, match="sweep point failed"):
            ParallelRunner(jobs=2).run(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SweepError, match="unknown runner kind"):
            ParallelRunner().run([SweepPoint.make("no-such-kind", {})])

    def test_failed_points_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = SweepSpec(
            kind="selftest", axes={"payload": [1]}, base={"behavior": "error"}
        )
        with pytest.raises(SweepError):
            ParallelRunner(store=store).run(spec)
        assert len(store) == 0


class TestPerPointTiming:
    def test_report_and_store_carry_point_times(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = ParallelRunner(store=store)
        result = runner.run(ECHO_SPEC)
        report = result.report
        assert report.executed == 5
        assert report.executed_seconds >= 0.0
        assert report.max_point_seconds <= report.executed_seconds + 1e-9
        for point in ECHO_SPEC.points():
            assert store.load_entry(point).elapsed_s is not None

    def test_cached_run_reports_saved_seconds(self, tmp_path):
        store = ResultStore(tmp_path)
        point = SweepPoint.make("selftest", {"payload": 1})
        store.store(point, {"echo": 1, "pid": 0}, elapsed_s=2.0)
        result = ParallelRunner(store=store).run([point])
        assert result.report.cached == 1
        assert result.report.saved_seconds == 2.0
        assert "cache saved ~2.0s" in result.report.timing_summary()

    def test_timing_summary_empty_when_nothing_ran(self):
        runner = ParallelRunner()
        result = runner.run([])
        assert result.report.timing_summary() == ""


class TestIncrementalSubmission:
    def test_submit_point_matches_batch_and_caches(self, tmp_path):
        store = ResultStore(tmp_path)
        with ParallelRunner(store=store) as runner:
            point = SweepPoint.make("selftest", {"payload": 42})
            outcome = runner.submit_point(point).result(timeout=30)
            assert not outcome.cached
            assert outcome.value["echo"] == 42
            assert outcome.elapsed_s is not None
            # the store was written, so a second submit is an instant hit
            # that never touches the pool again:
            hit = runner.submit_point(point).result(timeout=1)
            assert hit.cached
            assert hit.value == outcome.value
        batch = ParallelRunner(store=ResultStore(tmp_path)).run([point])
        assert batch.report.cached == 1
        assert batch.values[0] == outcome.value

    def test_cache_hit_never_starts_the_pool(self, tmp_path):
        store = ResultStore(tmp_path)
        point = SweepPoint.make("selftest", {"payload": 3})
        store.store(point, {"echo": 3, "pid": 0}, elapsed_s=0.5)
        with ParallelRunner(store=store) as runner:
            outcome = runner.submit_point(point).result(timeout=1)
            assert outcome.cached and outcome.elapsed_s == 0.5
            assert not runner.incremental_started

    def test_submit_point_failure_is_sweep_error(self):
        with ParallelRunner() as runner:
            point = SweepPoint.make(
                "selftest", {"payload": 9, "behavior": "error"}
            )
            future = runner.submit_point(point)
            with pytest.raises(SweepError, match="payload=9"):
                future.result(timeout=30)

    def test_parallel_jobs_submit_runs_in_worker_process(self, tmp_path):
        import os

        with ParallelRunner(jobs=2, store=ResultStore(tmp_path)) as runner:
            point = SweepPoint.make("selftest", {"payload": 11})
            outcome = runner.submit_point(point).result(timeout=60)
            assert outcome.value["echo"] == 11
            assert outcome.value["pid"] != os.getpid()

    def test_worker_crash_breaks_one_point_not_the_pool(self, tmp_path):
        """A crashed worker errors that submission; the pool is rebuilt
        and the next submission succeeds (long-lived service posture)."""
        with ParallelRunner(jobs=2, store=ResultStore(tmp_path)) as runner:
            crash = SweepPoint.make(
                "selftest", {"payload": 1, "behavior": "crash"}
            )
            with pytest.raises(SweepError):
                runner.submit_point(crash).result(timeout=60)
            healthy = SweepPoint.make("selftest", {"payload": 2})
            outcome = runner.submit_point(healthy).result(timeout=60)
            assert outcome.value["echo"] == 2
            # the crash was not cached; the success was.
            assert runner.store.load_entry(crash) is MISS
            assert runner.cached_outcome(healthy) is not None

    def test_cancelled_submission_resolves_not_hangs(self):
        """close() cancels queued work; waiters must get an error, not
        block forever."""
        from concurrent.futures import Future

        class FakeExecutor:
            def submit(self, fn, *args):
                self.inner = Future()
                return self.inner

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        runner = ParallelRunner()
        fake = FakeExecutor()
        runner._incremental = fake
        outer = runner.submit_point(SweepPoint.make("selftest", {"payload": 1}))
        fake.inner.cancel()
        with pytest.raises(SweepError, match="cancelled"):
            outer.result(timeout=5)

    def test_close_is_idempotent_and_reopens(self):
        runner = ParallelRunner()
        runner.close()  # never started: no-op
        point = SweepPoint.make("selftest", {"payload": 1})
        assert runner.submit_point(point).result(timeout=30).value["echo"] == 1
        runner.close()
        # a new submission after close() lazily builds a fresh pool.
        assert runner.submit_point(point).result(timeout=30).value["echo"] == 1
        runner.close()


class TestJobs:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(0) >= 1  # all cores
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_single_point_falls_back_to_serial(self):
        result = ParallelRunner(jobs=8).run(ECHO_SPEC.points()[:1])
        import os

        assert result.values[0]["pid"] == os.getpid()


class TestStragglerPacking:
    """Chunk packing by predicted duration (recorded wall times)."""

    def _points(self, apps, reps=1):
        return [
            SweepPoint.make("selftest", {"payload": f"{app}-{i}", "app": app})
            for i in range(reps)
            for app in apps
        ]

    def test_no_store_packs_balanced_counts(self):
        runner = ParallelRunner(jobs=2)
        points = ECHO_SPEC.points()
        chunks = runner._pack_chunks(points, workers=2)
        assert sorted(i for chunk in chunks for i in chunk) == list(range(5))
        assert max(len(c) for c in chunks) <= 1 + min(len(c) for c in chunks)

    def test_explicit_chunk_size_keeps_fixed_slices(self):
        runner = ParallelRunner(jobs=2, chunk_size=2)
        chunks = runner._pack_chunks(ECHO_SPEC.points(), workers=2)
        assert chunks == [[0, 1], [2, 3], [4]]

    def test_app_level_means_drive_packing(self, tmp_path):
        """An app recorded as slow is spread across chunks first."""
        store = ResultStore(tmp_path)
        # history: 'ocean' points took 4s, 'em3d' points 1s
        for i, (app, elapsed) in enumerate(
            [("ocean", 4.0), ("ocean", 4.0), ("em3d", 1.0), ("em3d", 1.0)]
        ):
            store.store(
                SweepPoint.make("selftest", {"payload": f"old-{i}", "app": app}),
                {"echo": i},
                elapsed_s=elapsed,
            )
        runner = ParallelRunner(jobs=2, store=store)
        pending = self._points(["ocean", "em3d"], reps=4)
        durations = runner.predicted_durations(pending)
        by_app = {p["app"]: d for p, d in zip(pending, durations)}
        assert by_app == {"ocean": 4.0, "em3d": 1.0}
        chunks = runner._pack_chunks(pending, workers=1)
        loads = [sum(durations[i] for i in chunk) for chunk in chunks]
        # greedy LPT on 4x4s + 4x1s over 4 bins: perfectly even 5s bins
        assert loads == [5.0, 5.0, 5.0, 5.0]

    def test_point_recorded_time_wins_under_refresh(self, tmp_path):
        store = ResultStore(tmp_path)
        point = SweepPoint.make("selftest", {"payload": 1, "app": "em3d"})
        store.store(point, {"echo": 1}, elapsed_s=9.0)
        runner = ParallelRunner(jobs=2, store=store, refresh=True)
        assert runner.predicted_durations([point]) == [9.0]

    def test_kind_mean_fallback_without_app_match(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(
            SweepPoint.make("selftest", {"payload": "x"}), {"echo": 0}, elapsed_s=3.0
        )
        runner = ParallelRunner(jobs=2, store=store)
        fresh = [SweepPoint.make("selftest", {"payload": "y", "app": "novel"})]
        assert runner.predicted_durations(fresh) == [3.0]

    def test_packing_is_deterministic(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(6):
            store.store(
                SweepPoint.make("selftest", {"payload": f"o{i}", "app": f"a{i % 3}"}),
                {"echo": i},
                elapsed_s=float(i + 1),
            )
        runner = ParallelRunner(jobs=3, store=store)
        pending = self._points([f"a{i}" for i in range(3)], reps=5)
        first = runner._pack_chunks(pending, workers=3)
        second = runner._pack_chunks(pending, workers=3)
        assert first == second

    def test_packed_parallel_run_preserves_grid_order(self, tmp_path):
        """Packing reorders execution, never results."""
        store = ResultStore(tmp_path)
        # seed uneven history so packing actually deviates from slices
        for app, elapsed in [("slow", 8.0), ("fast", 1.0)]:
            store.store(
                SweepPoint.make("selftest", {"payload": "seed", "app": app}),
                {"echo": 0},
                elapsed_s=elapsed,
            )
        spec = SweepSpec(
            kind="selftest",
            axes={"payload": list(range(8)), "app": ["slow", "fast"]},
        )
        packed = ParallelRunner(jobs=2, store=store).run(spec)
        serial = ParallelRunner(jobs=1).run(spec)
        assert packed.points == serial.points
        assert echoes(packed) == echoes(serial)
