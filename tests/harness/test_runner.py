"""Tests for sweep execution: serial, parallel, cached, and failing."""

import pytest

from repro.harness import (
    ParallelRunner,
    ResultStore,
    SweepError,
    SweepPoint,
    SweepSpec,
    resolve_jobs,
)

ECHO_SPEC = SweepSpec(kind="selftest", axes={"payload": [1, 2, 3, 4, 5]})


def echoes(result):
    return [value["echo"] for value in result.values]


class TestSerialParallelEquivalence:
    def test_same_spec_same_results(self):
        serial = ParallelRunner(jobs=1).run(ECHO_SPEC)
        parallel = ParallelRunner(jobs=3).run(ECHO_SPEC)
        assert echoes(serial) == echoes(parallel) == [1, 2, 3, 4, 5]
        assert serial.points == parallel.points

    def test_parallel_executes_in_worker_processes(self):
        import os

        result = ParallelRunner(jobs=3, chunk_size=1).run(ECHO_SPEC)
        assert os.getpid() not in {value["pid"] for value in result.values}

    def test_accuracy_kind_bit_identical(self):
        spec = SweepSpec(
            kind="accuracy",
            axes={"app": ["em3d", "ocean"], "depth": [1, 2]},
            base={"iterations": 4},
        )
        serial = ParallelRunner(jobs=1).run(spec)
        parallel = ParallelRunner(jobs=2).run(spec)
        assert serial.values == parallel.values

    def test_duplicate_points_executed_once(self):
        points = SweepPoint.make("selftest", {"payload": 7}), SweepPoint.make(
            "selftest", {"payload": 7}
        )
        result = ParallelRunner(jobs=1).run(list(points))
        assert result.report.executed == 1
        assert len(result) == 2
        assert result.values[0] == result.values[1]


class TestCaching:
    def test_second_run_executes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        first = ParallelRunner(jobs=2, store=store).run(ECHO_SPEC)
        second = ParallelRunner(jobs=2, store=store).run(ECHO_SPEC)
        assert first.report.executed == 5 and first.report.cached == 0
        assert second.report.executed == 0 and second.report.cached == 5
        assert second.values == first.values

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        store = ResultStore(tmp_path)
        point = SweepPoint.make("selftest", {"payload": 1})
        store.store(point, {"echo": "stale", "pid": -1})
        result = ParallelRunner(store=store, refresh=True).run([point])
        assert result.report.executed == 1
        assert store.load(point)["echo"] == 1

    def test_partial_cache_runs_only_missing_points(self, tmp_path):
        store = ResultStore(tmp_path)
        ParallelRunner(store=store).run(ECHO_SPEC.points()[:2])
        result = ParallelRunner(store=store).run(ECHO_SPEC)
        assert result.report.cached == 2
        assert result.report.executed == 3
        assert echoes(result) == [1, 2, 3, 4, 5]


class TestFailures:
    def test_worker_crash_surfaces_as_error_not_hang(self):
        spec = SweepSpec(
            kind="selftest", axes={"payload": [1, 2]}, base={"behavior": "crash"}
        )
        with pytest.raises(SweepError, match="worker process died"):
            ParallelRunner(jobs=2).run(spec)

    def test_point_exception_names_the_point_serial(self):
        spec = SweepSpec(
            kind="selftest", axes={"payload": [9]}, base={"behavior": "error"}
        )
        with pytest.raises(SweepError, match="payload=9"):
            ParallelRunner(jobs=1).run(spec)

    def test_point_exception_names_the_point_parallel(self):
        spec = SweepSpec(
            kind="selftest", axes={"payload": [8, 9]}, base={"behavior": "error"}
        )
        with pytest.raises(SweepError, match="sweep point failed"):
            ParallelRunner(jobs=2).run(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SweepError, match="unknown runner kind"):
            ParallelRunner().run([SweepPoint.make("no-such-kind", {})])

    def test_failed_points_not_cached(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = SweepSpec(
            kind="selftest", axes={"payload": [1]}, base={"behavior": "error"}
        )
        with pytest.raises(SweepError):
            ParallelRunner(store=store).run(spec)
        assert len(store) == 0


class TestJobs:
    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(0) >= 1  # all cores
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_single_point_falls_back_to_serial(self):
        result = ParallelRunner(jobs=8).run(ECHO_SPEC.points()[:1])
        import os

        assert result.values[0]["pid"] == os.getpid()
