"""Tests for sweep specs and points (grid expansion, hashing)."""

import pytest

from repro.common.canonical import canonical_hash, canonical_json
from repro.harness import SweepPoint, SweepSpec


class TestCanonical:
    def test_key_order_does_not_matter(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_tuples_and_lists_hash_identically(self):
        assert canonical_hash({"x": (1, 2)}) == canonical_hash({"x": [1, 2]})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_non_json_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})


class TestSweepPoint:
    def test_param_order_insensitive(self):
        a = SweepPoint.make("k", {"x": 1, "y": 2})
        b = SweepPoint.make("k", {"y": 2, "x": 1})
        assert a == b
        assert a.key == b.key
        assert hash(a) == hash(b)

    def test_kind_distinguishes(self):
        a = SweepPoint.make("k1", {"x": 1})
        b = SweepPoint.make("k2", {"x": 1})
        assert a != b
        assert a.key != b.key

    def test_identity_follows_serialized_form_not_python_equality(self):
        # 1 == True == 1.0 in Python, but they serialize (and therefore
        # cache) differently — the point identity must match the cache.
        one = SweepPoint.make("k", {"x": 1})
        true = SweepPoint.make("k", {"x": True})
        one_f = SweepPoint.make("k", {"x": 1.0})
        assert len({one, true, one_f}) == 3
        assert len({one.key, true.key, one_f.key}) == 3

    def test_nested_values_freeze_and_thaw(self):
        params = {"cfg": {"nodes": 8, "depths": [1, 2]}, "app": "em3d"}
        point = SweepPoint.make("k", params)
        assert point.as_dict() == {
            "cfg": {"nodes": 8, "depths": [1, 2]},
            "app": "em3d",
        }
        assert point["cfg"]["nodes"] == 8
        assert point.get("missing", 42) == 42
        with pytest.raises(KeyError):
            point["missing"]

    def test_points_usable_as_dict_keys(self):
        a = SweepPoint.make("k", {"x": [1, {"y": 2}]})
        b = SweepPoint.make("k", {"x": [1, {"y": 2}]})
        assert {a: "v"}[b] == "v"

    def test_non_json_param_rejected(self):
        with pytest.raises(TypeError):
            SweepPoint.make("k", {"x": object()})


class TestSweepSpec:
    def test_grid_is_cartesian_product_first_axis_slowest(self):
        spec = SweepSpec(kind="k", axes={"a": [1, 2], "b": ["x", "y"]})
        got = [(p["a"], p["b"]) for p in spec.points()]
        assert got == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]
        assert len(spec) == 4

    def test_base_params_shared_and_overridable_by_axes(self):
        spec = SweepSpec(kind="k", axes={"x": [1, 2]}, base={"x": 0, "y": 9})
        assert [(p["x"], p["y"]) for p in spec] == [(1, 9), (2, 9)]

    def test_derive_adds_per_point_params(self):
        spec = SweepSpec(
            kind="k",
            axes={"app": ["a", "bb"]},
            derive=lambda p: {"iterations": len(p["app"])},
        )
        assert [p["iterations"] for p in spec] == [1, 2]

    def test_where_drops_cells(self):
        spec = SweepSpec(
            kind="k",
            axes={"a": [1, 2, 3]},
            where=lambda p: p["a"] != 2,
        )
        assert [p["a"] for p in spec] == [1, 3]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(kind="k", axes={"a": []}).points()

    def test_no_axes_yields_single_base_point(self):
        spec = SweepSpec(kind="k", base={"x": 1})
        points = spec.points()
        assert len(points) == 1 and points[0]["x"] == 1


