"""Property-based tests for sweep-point identity and hashing.

A counterexample here means cache corruption: two different parameter
sets sharing a key, or the same parameters hashing differently between
runs.  Kept in their own module so the rest of the harness suite still
runs when Hypothesis is not installed.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given

from repro.harness import SweepPoint
from tests.strategies import DETERMINISM_SETTINGS, sweep_param_dicts, sweep_points

pytestmark = pytest.mark.property


class TestPointProperties:
    @given(params=sweep_param_dicts())
    @DETERMINISM_SETTINGS
    def test_any_param_dict_freezes_hashes_and_round_trips(self, params):
        point = SweepPoint.make("k", params)
        hash(point)
        assert len(point.key) == 64
        rebuilt = SweepPoint.make("k", point.as_dict())
        assert rebuilt == point
        assert rebuilt.key == point.key

    @given(params=sweep_param_dicts())
    @DETERMINISM_SETTINGS
    def test_insertion_order_never_changes_identity(self, params):
        reversed_params = dict(reversed(list(params.items())))
        a = SweepPoint.make("k", params)
        b = SweepPoint.make("k", reversed_params)
        assert a == b and a.key == b.key

    @given(point=sweep_points())
    @DETERMINISM_SETTINGS
    def test_key_is_stable_across_reconstruction(self, point):
        clone = SweepPoint.make(point.kind, point.as_dict())
        assert clone.key == point.key
