"""Tests for the filesystem claim protocol and the claimed runner.

The contract under test: N workers pointed at one shared cache dir
divide a grid between them — every point computed exactly once, results
bit-identical to a serial run — and a crashed worker's claims are
reclaimed after the TTL while a live worker's heartbeat protects its
claims indefinitely.
"""

import json
import multiprocessing
import os
import threading
import time

import pytest

from repro.harness import (
    MISS,
    ClaimBoard,
    ClaimedRunner,
    ParallelRunner,
    ResultStore,
    SweepError,
    SweepPoint,
    SweepSpec,
)

ECHO_SPEC = SweepSpec(kind="selftest", axes={"payload": [1, 2, 3, 4, 5]})


def backdate(board: ClaimBoard, key: str, seconds: float) -> None:
    """Age a claim's heartbeat by ``seconds`` (simulates a dead owner)."""
    path = board.path_for(key)
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


class TestClaimBoard:
    def test_acquire_creates_claim_file_with_owner(self, tmp_path):
        board = ClaimBoard(tmp_path, owner="w1")
        assert board.acquire("k1")
        payload = json.loads(board.path_for("k1").read_text())
        assert payload["owner"] == "w1"
        assert payload["pid"] == os.getpid()
        assert board.holds("k1") and board.held == 1

    def test_fresh_claim_blocks_other_owners(self, tmp_path):
        first = ClaimBoard(tmp_path, owner="w1")
        second = ClaimBoard(tmp_path, owner="w2")
        assert first.acquire("k1")
        assert not second.acquire("k1")
        info = second.read("k1")
        assert info.owner == "w1" and info.age_s < 5.0

    def test_release_frees_the_claim(self, tmp_path):
        first = ClaimBoard(tmp_path, owner="w1")
        second = ClaimBoard(tmp_path, owner="w2")
        assert first.acquire("k1")
        first.release("k1")
        assert not board_file_exists(first, "k1")
        assert second.acquire("k1")
        assert first.stats()["released"] == 1

    def test_release_of_unheld_key_is_a_noop(self, tmp_path):
        first = ClaimBoard(tmp_path, owner="w1")
        second = ClaimBoard(tmp_path, owner="w2")
        assert first.acquire("k1")
        second.release("k1")  # not second's to release
        assert board_file_exists(first, "k1")
        assert second.stats()["released"] == 0

    def test_stale_claim_is_stolen_after_ttl(self, tmp_path):
        dead = ClaimBoard(tmp_path, owner="crashed", ttl_s=10.0)
        assert dead.acquire("k1")
        backdate(dead, "k1", seconds=60.0)
        thief = ClaimBoard(tmp_path, owner="thief", ttl_s=10.0)
        assert thief.acquire("k1")
        assert thief.stats()["stolen"] == 1
        assert json.loads(thief.path_for("k1").read_text())["owner"] == "thief"

    def test_heartbeat_prevents_takeover(self, tmp_path):
        live = ClaimBoard(tmp_path, owner="live", ttl_s=30.0)
        assert live.acquire("k1")
        backdate(live, "k1", seconds=300.0)  # would be stealable...
        live.heartbeat()  # ...but the owner is alive and refreshes it
        other = ClaimBoard(tmp_path, owner="other", ttl_s=30.0)
        assert not other.acquire("k1")
        assert other.stats()["stolen"] == 0

    def test_owner_detects_a_stolen_claim_on_heartbeat(self, tmp_path):
        slow = ClaimBoard(tmp_path, owner="slow", ttl_s=5.0)
        assert slow.acquire("k1")
        backdate(slow, "k1", seconds=60.0)
        thief = ClaimBoard(tmp_path, owner="thief", ttl_s=5.0)
        assert thief.acquire("k1")
        slow.heartbeat()  # must not refresh the thief's claim
        assert not slow.holds("k1")
        assert slow.stats()["lost"] == 1
        assert json.loads(thief.path_for("k1").read_text())["owner"] == "thief"

    def test_release_restores_claim_stolen_mid_release(self, tmp_path, monkeypatch):
        """The release TOCTOU: a steal landing between release's
        ownership read and the file removal must not delete the thief's
        fresh claim — release verifies what it renamed aside and puts a
        foreign claim back."""
        from repro.harness import ClaimInfo

        slow = ClaimBoard(tmp_path, owner="slow", ttl_s=5.0)
        assert slow.acquire("k1")
        backdate(slow, "k1", seconds=60.0)
        thief = ClaimBoard(tmp_path, owner="thief", ttl_s=5.0)
        assert thief.acquire("k1")
        # freeze the pre-removal read at "still ours" to land in the window
        monkeypatch.setattr(
            slow,
            "read",
            lambda key: ClaimInfo(
                owner="slow", pid=0, host="h", claimed_at=0.0, age_s=0.0
            ),
        )
        slow.release("k1")
        assert json.loads(thief.path_for("k1").read_text())["owner"] == "thief"
        assert slow.stats()["lost"] == 1
        assert slow.stats()["released"] == 0

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="TTL"):
            ClaimBoard(tmp_path, ttl_s=0)

    def test_events_log_records_transitions(self, tmp_path):
        board = ClaimBoard(tmp_path, owner="w1")
        board.acquire("k1")
        board.note_computed("k1")
        board.release("k1")
        events = [(e["event"], e["owner"]) for e in board.events()]
        assert events == [("claimed", "w1"), ("computed", "w1"), ("released", "w1")]

    def test_torn_claim_file_reads_as_fresh_not_stealable(self, tmp_path):
        """A claim seen between O_CREAT and its payload write must never
        be stolen just for being unparsable."""
        board = ClaimBoard(tmp_path, owner="w1", ttl_s=10.0)
        board.path_for("k1").write_text("")  # simulate the torn window
        info = board.read("k1")
        assert info is not None and info.owner is None and info.age_s < 5.0
        other = ClaimBoard(tmp_path, owner="w2", ttl_s=10.0)
        assert not other.acquire("k1")


def board_file_exists(board: ClaimBoard, key: str) -> bool:
    return board.path_for(key).exists()


def _race_for_claim(root, key, barrier, queue):
    board = ClaimBoard(root, owner=f"racer-{os.getpid()}")
    barrier.wait()
    queue.put(board.acquire(key))


class TestClaimRaces:
    def test_o_creat_excl_race_has_exactly_one_winner(self, tmp_path):
        """Multiple *processes* releasing a barrier into acquire() on one
        key: the kernel's O_CREAT|O_EXCL picks exactly one winner."""
        ctx = multiprocessing.get_context("fork")
        racers = 4
        barrier = ctx.Barrier(racers)
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_race_for_claim,
                args=(str(tmp_path), "contested", barrier, queue),
            )
            for _ in range(racers)
        ]
        for proc in procs:
            proc.start()
        wins = [queue.get(timeout=30) for _ in range(racers)]
        for proc in procs:
            proc.join(timeout=30)
        assert sum(wins) == 1

    def test_threaded_steal_race_single_thief(self, tmp_path):
        """Many threads racing to steal one stale claim: the rename
        tombstone admits exactly one."""
        # ttl must be generous: with a short one, a loaded machine can
        # delay a losing thief's stat past the TTL, making the freshly
        # stolen claim itself look stale (a second legitimate steal, and
        # a flaky assertion).  The 60s backdate keeps the original stale.
        dead = ClaimBoard(tmp_path, owner="dead", ttl_s=30.0)
        assert dead.acquire("k1")
        backdate(dead, "k1", seconds=60.0)
        boards = [
            ClaimBoard(tmp_path, owner=f"thief-{i}", ttl_s=30.0) for i in range(6)
        ]
        barrier = threading.Barrier(len(boards))
        wins = []

        def steal(board):
            barrier.wait()
            wins.append(board.acquire("k1"))

        threads = [threading.Thread(target=steal, args=(b,)) for b in boards]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sum(wins) == 1


class TestClaimedRunner:
    def make(self, tmp_path, owner="w1", ttl_s=30.0, **runner_kwargs):
        runner_kwargs.setdefault("jobs", 1)
        runner_kwargs.setdefault("store", ResultStore(tmp_path / "cache"))
        return ClaimedRunner(
            ParallelRunner(**runner_kwargs),
            ClaimBoard(tmp_path / "cache" / "claims", owner=owner, ttl_s=ttl_s),
            poll_interval_s=0.02,
        )

    def test_requires_a_store(self, tmp_path):
        with pytest.raises(ValueError, match="store"):
            ClaimedRunner(
                ParallelRunner(jobs=1), ClaimBoard(tmp_path / "claims")
            )

    def test_rejects_refresh(self, tmp_path):
        with pytest.raises(ValueError, match="refresh"):
            ClaimedRunner(
                ParallelRunner(store=ResultStore(tmp_path / "cache"), refresh=True),
                ClaimBoard(tmp_path / "claims"),
            )

    def test_single_worker_run_matches_serial(self, tmp_path):
        serial = ParallelRunner(jobs=1).run(ECHO_SPEC)
        with self.make(tmp_path) as runner:
            claimed = runner.run(ECHO_SPEC)
            assert [v["echo"] for v in claimed.values] == [
                v["echo"] for v in serial.values
            ]
            assert claimed.report.executed == 5
            assert runner.claims.stats()["computed"] == 5
            # every claim was released: a rerun is pure cache hits
            assert runner.claims.held == 0
            again = runner.run(ECHO_SPEC)
            assert again.report.executed == 0 and again.report.cached == 5

    def test_accuracy_grid_serial_equals_claimed_parallel(self, tmp_path):
        """The distributed analogue of the serial≡parallel golden: a
        claimed runner over worker processes produces bit-identical
        grid results."""
        spec = SweepSpec(
            kind="accuracy",
            axes={"app": ["em3d", "ocean"], "depth": [1, 2]},
            base={"iterations": 4},
        )
        serial = ParallelRunner(jobs=1).run(spec)
        with self.make(tmp_path, jobs=2) as runner:
            claimed = runner.run(spec)
        assert claimed.values == serial.values
        assert claimed.points == serial.points

    def test_two_workers_divide_a_grid_exactly_once(self, tmp_path):
        """Two claimed runners over one cache dir: every point computed
        exactly once across both, results identical on both."""
        spec = SweepSpec(
            kind="selftest",
            axes={"payload": list(range(8))},
            base={"sleep_s": 0.03},
        )
        results = {}

        def work(name):
            with self.make(tmp_path, owner=name) as runner:
                results[name] = runner.run(spec)

        threads = [
            threading.Thread(target=work, args=(name,)) for name in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        values_a = [v["echo"] for v in results["a"].values]
        values_b = [v["echo"] for v in results["b"].values]
        assert values_a == values_b == list(range(8))
        total = results["a"].report.executed + results["b"].report.executed
        assert total == 8  # no point computed twice
        audit = ClaimBoard(tmp_path / "cache" / "claims", owner="audit")
        computed = [e for e in audit.events() if e["event"] == "computed"]
        per_key = {}
        for event in computed:
            per_key[event["key"]] = per_key.get(event["key"], 0) + 1
        assert len(per_key) == 8 and set(per_key.values()) == {1}

    def test_stale_claim_of_crashed_worker_is_taken_over(self, tmp_path):
        """A claim left behind by a dead worker does not block the grid:
        after the TTL the live worker steals it and computes the point."""
        store = ResultStore(tmp_path / "cache")
        point = SweepPoint.make("selftest", {"payload": 1})
        crashed = ClaimBoard(tmp_path / "cache" / "claims", owner="crashed", ttl_s=5.0)
        with self.make(tmp_path, owner="live", ttl_s=5.0) as runner:
            assert crashed.acquire(runner.claim_key(point))
            backdate(crashed, runner.claim_key(point), seconds=60.0)
            result = runner.run([point])
            assert result.values[0]["echo"] == 1
            assert runner.claims.stats()["stolen"] == 1
        assert store.load_entry(point) is not MISS

    def test_waits_for_point_claimed_by_live_worker(self, tmp_path):
        """A point freshly claimed elsewhere is not recomputed — the
        runner polls until the other worker's result lands."""
        store = ResultStore(tmp_path / "cache")
        point = SweepPoint.make("selftest", {"payload": 7})
        other = ClaimBoard(tmp_path / "cache" / "claims", owner="other", ttl_s=30.0)
        with self.make(tmp_path, owner="waiter", ttl_s=30.0) as runner:
            assert other.acquire(runner.claim_key(point))
            done = {}

            def run():
                done["result"] = runner.run([point])

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.15)
            assert "result" not in done  # still waiting on the claim
            # the other worker finishes: result first, then release
            store.store(point, {"echo": 7, "pid": -1}, elapsed_s=0.5)
            other.release(runner.claim_key(point))
            thread.join(timeout=30)
            result = done["result"]
            assert result.values[0] == {"echo": 7, "pid": -1}
            assert result.report.executed == 0 and result.report.cached == 1

    def test_failed_point_releases_its_claim_and_raises(self, tmp_path):
        point = SweepPoint.make("selftest", {"payload": 9, "behavior": "error"})
        with self.make(tmp_path) as runner:
            with pytest.raises(SweepError, match="payload=9"):
                runner.run([point])
            assert runner.claims.held == 0
            assert not board_file_exists(runner.claims, runner.claim_key(point))

    def test_submit_point_computes_and_releases(self, tmp_path):
        with self.make(tmp_path) as runner:
            point = SweepPoint.make("selftest", {"payload": 42})
            outcome = runner.submit_point(point).result(timeout=30)
            assert not outcome.cached and outcome.value["echo"] == 42
            assert runner.claims.held == 0
            assert runner.claims.stats()["computed"] == 1
            hit = runner.submit_point(point).result(timeout=5)
            assert hit.cached and hit.value == outcome.value

    def test_submit_point_waits_on_foreign_claim(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        point = SweepPoint.make("selftest", {"payload": 3})
        other = ClaimBoard(tmp_path / "cache" / "claims", owner="other", ttl_s=30.0)
        with self.make(tmp_path, owner="waiter") as runner:
            assert other.acquire(runner.claim_key(point))
            future = runner.submit_point(point)
            time.sleep(0.1)
            assert not future.done()
            store.store(point, {"echo": 3, "pid": -1}, elapsed_s=0.2)
            outcome = future.result(timeout=30)
            assert outcome.cached and outcome.value == {"echo": 3, "pid": -1}
            # no duplicate computation happened on this side
            assert runner.claims.stats()["computed"] == 0

    def test_submit_point_steals_stale_foreign_claim(self, tmp_path):
        point = SweepPoint.make("selftest", {"payload": 5})
        dead = ClaimBoard(tmp_path / "cache" / "claims", owner="dead", ttl_s=1.0)
        with self.make(tmp_path, owner="live", ttl_s=1.0) as runner:
            key = runner.claim_key(point)
            assert dead.acquire(key)
            backdate(dead, key, seconds=60.0)
            outcome = runner.submit_point(point).result(timeout=30)
            assert not outcome.cached and outcome.value["echo"] == 5
            assert runner.claims.stats()["stolen"] == 1

    def test_close_resolves_pending_waiters(self, tmp_path):
        point = SweepPoint.make("selftest", {"payload": 8})
        other = ClaimBoard(tmp_path / "cache" / "claims", owner="other", ttl_s=30.0)
        runner = self.make(tmp_path, owner="closer")
        assert other.acquire(runner.claim_key(point))
        future = runner.submit_point(point)
        runner.close()
        with pytest.raises(SweepError, match="closed"):
            future.result(timeout=5)

    def test_duplicate_grid_points_resolved_once(self, tmp_path):
        points = [
            SweepPoint.make("selftest", {"payload": 7}),
            SweepPoint.make("selftest", {"payload": 7}),
        ]
        with self.make(tmp_path) as runner:
            result = runner.run(points)
            assert result.report.executed == 1
            assert result.values[0] == result.values[1]
