"""Tests for the content-addressed result store."""

import json

import pytest

from repro.harness import MISS, ResultStore, SweepPoint


@pytest.fixture
def point():
    return SweepPoint.make("selftest", {"payload": 1, "behavior": "ok"})


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, point):
        store = ResultStore(tmp_path)
        result = {"echo": 1, "nested": {"floats": [0.1, 2.5e-3]}}
        store.store(point, result)
        assert store.load(point) == result

    def test_missing_point_is_miss_not_none(self, tmp_path, point):
        store = ResultStore(tmp_path)
        assert store.load(point) is MISS
        store.store(point, None)
        assert store.load(point) is None

    def test_floats_round_trip_bit_for_bit(self, tmp_path, point):
        store = ResultStore(tmp_path)
        values = [0.1 + 0.2, 1 / 3, 1e-300, 6.2831853071795864]
        store.store(point, values)
        loaded = store.load(point)
        assert all(a == b and repr(a) == repr(b) for a, b in zip(values, loaded))

    def test_overwrite_replaces(self, tmp_path, point):
        store = ResultStore(tmp_path)
        store.store(point, "old")
        store.store(point, "new")
        assert store.load(point) == "new"
        assert len(store) == 1


class TestInvalidation:
    def test_different_params_different_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        a = SweepPoint.make("selftest", {"payload": 1})
        b = SweepPoint.make("selftest", {"payload": 2})
        store.store(a, "A")
        assert store.load(b) is MISS

    def test_fingerprint_change_invalidates(self, tmp_path, point):
        old = ResultStore(tmp_path, fingerprint={"block_bytes": 32})
        old.store(point, "old-config")
        new = ResultStore(tmp_path, fingerprint={"block_bytes": 64})
        assert new.load(point) is MISS
        # ... without destroying the old configuration's entry.
        assert old.load(point) == "old-config"

    def test_corrupt_entry_is_a_miss(self, tmp_path, point):
        store = ResultStore(tmp_path)
        path = store.store(point, {"fine": True})
        path.write_text("{ truncated", encoding="utf-8")
        assert store.load(point) is MISS

    def test_non_utf8_entry_is_a_miss(self, tmp_path, point):
        store = ResultStore(tmp_path)
        path = store.store(point, {"fine": True})
        path.write_bytes(b"\xff\xfe garbage \x80")
        assert store.load(point) is MISS

    def test_discard(self, tmp_path, point):
        store = ResultStore(tmp_path)
        store.store(point, 1)
        store.discard(point)
        assert store.load(point) is MISS
        store.discard(point)  # idempotent


class TestMaintenance:
    def test_layout_is_kind_then_key(self, tmp_path, point):
        store = ResultStore(tmp_path)
        path = store.store(point, 1)
        assert path.parent.name == "selftest"
        assert path.name == f"{store.key_for(point)}.json"
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["params"] == point.as_dict()
        assert entry["result"] == 1

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        for payload in range(3):
            store.store(SweepPoint.make("selftest", {"payload": payload}), payload)
        assert len(store) == 3
        assert store.clear() == 3
        assert len(store) == 0

    def test_len_on_missing_root(self, tmp_path):
        assert len(ResultStore(tmp_path / "never-created")) == 0
