"""Tests for the content-addressed result store."""

import json
import threading

import pytest

from repro.harness import MISS, ResultStore, StoredEntry, SweepPoint


@pytest.fixture
def point():
    return SweepPoint.make("selftest", {"payload": 1, "behavior": "ok"})


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, point):
        store = ResultStore(tmp_path)
        result = {"echo": 1, "nested": {"floats": [0.1, 2.5e-3]}}
        store.store(point, result)
        assert store.load(point) == result

    def test_missing_point_is_miss_not_none(self, tmp_path, point):
        store = ResultStore(tmp_path)
        assert store.load(point) is MISS
        store.store(point, None)
        assert store.load(point) is None

    def test_floats_round_trip_bit_for_bit(self, tmp_path, point):
        store = ResultStore(tmp_path)
        values = [0.1 + 0.2, 1 / 3, 1e-300, 6.2831853071795864]
        store.store(point, values)
        loaded = store.load(point)
        assert all(a == b and repr(a) == repr(b) for a, b in zip(values, loaded))

    def test_overwrite_replaces(self, tmp_path, point):
        store = ResultStore(tmp_path)
        store.store(point, "old")
        store.store(point, "new")
        assert store.load(point) == "new"
        assert len(store) == 1


class TestKeyNeutralParams:
    """``engine`` never addresses a cache entry: the timing and trace
    engines are bit-identical by golden-equivalence contract, so a
    point computed by any engine is reused by all of them."""

    @pytest.mark.parametrize("kind", ["speculation", "accuracy"])
    def test_engine_excluded_from_key(self, tmp_path, kind):
        store = ResultStore(tmp_path)
        base = {"app": "em3d", "iterations": 2}
        plain = SweepPoint.make(kind, base)
        keyed = [
            SweepPoint.make(kind, {**base, "engine": engine})
            for engine in ("fast", "compiled", "reference")
        ]
        for point in keyed:
            assert store.key_for(point) == store.key_for(plain)
            assert store.path_for(point) == store.path_for(plain)

    def test_engine_sharing_round_trips(self, tmp_path):
        store = ResultStore(tmp_path)
        fast = SweepPoint.make("speculation", {"app": "em3d", "engine": "fast"})
        ref = SweepPoint.make(
            "speculation", {"app": "em3d", "engine": "reference"}
        )
        store.store(fast, {"cycles": 123})
        assert store.load(ref) == {"cycles": 123}
        # The stored entry still records the params that computed it.
        entry = json.loads(store.path_for(ref).read_text())
        assert entry["params"]["engine"] == "fast"

    def test_other_kinds_keep_engine_in_key(self, tmp_path):
        store = ResultStore(tmp_path)
        a = SweepPoint.make("selftest", {"payload": 1, "engine": "fast"})
        b = SweepPoint.make("selftest", {"payload": 1, "engine": "reference"})
        assert store.key_for(a) != store.key_for(b)


class TestInvalidation:
    def test_different_params_different_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        a = SweepPoint.make("selftest", {"payload": 1})
        b = SweepPoint.make("selftest", {"payload": 2})
        store.store(a, "A")
        assert store.load(b) is MISS

    def test_fingerprint_change_invalidates(self, tmp_path, point):
        old = ResultStore(tmp_path, fingerprint={"block_bytes": 32})
        old.store(point, "old-config")
        new = ResultStore(tmp_path, fingerprint={"block_bytes": 64})
        assert new.load(point) is MISS
        # ... without destroying the old configuration's entry.
        assert old.load(point) == "old-config"

    def test_corrupt_entry_is_a_miss(self, tmp_path, point):
        store = ResultStore(tmp_path)
        path = store.store(point, {"fine": True})
        path.write_text("{ truncated", encoding="utf-8")
        assert store.load(point) is MISS

    def test_non_utf8_entry_is_a_miss(self, tmp_path, point):
        store = ResultStore(tmp_path)
        path = store.store(point, {"fine": True})
        path.write_bytes(b"\xff\xfe garbage \x80")
        assert store.load(point) is MISS

    def test_discard(self, tmp_path, point):
        store = ResultStore(tmp_path)
        store.store(point, 1)
        store.discard(point)
        assert store.load(point) is MISS
        store.discard(point)  # idempotent


class TestTiming:
    def test_elapsed_round_trips(self, tmp_path, point):
        store = ResultStore(tmp_path)
        store.store(point, {"x": 1}, elapsed_s=0.25)
        entry = store.load_entry(point)
        assert isinstance(entry, StoredEntry)
        assert entry.result == {"x": 1}
        assert entry.elapsed_s == 0.25
        # the result-only view is unchanged:
        assert store.load(point) == {"x": 1}

    def test_entry_without_timing_still_loads(self, tmp_path, point):
        """A v1 cache (written before timing existed) is not invalidated."""
        store = ResultStore(tmp_path)
        path = store.store(point, "legacy")
        entry = json.loads(path.read_text(encoding="utf-8"))
        del entry["entry_version"]  # exactly what a v1 file looks like
        assert "elapsed_s" not in entry
        path.write_text(json.dumps(entry), encoding="utf-8")
        loaded = store.load_entry(point)
        assert loaded.result == "legacy"
        assert loaded.elapsed_s is None

    def test_garbage_elapsed_reads_as_absent(self, tmp_path, point):
        store = ResultStore(tmp_path)
        path = store.store(point, "ok", elapsed_s=1.0)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["elapsed_s"] = "not-a-number"
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert store.load_entry(point).elapsed_s is None


class TestConcurrentWriters:
    def test_same_process_threads_never_tear_an_entry(self, tmp_path, point):
        """Temp names are unique per writer, not per pid: a served sweep
        and a CLI sweep (or many service worker threads) can share one
        cache dir without staging-file collisions."""
        store = ResultStore(tmp_path)
        errors = []

        def write(value):
            try:
                for _ in range(25):
                    store.store(point, value, elapsed_s=0.1)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # whichever writer won, the entry is intact and parseable:
        assert store.load(point) in (0, 1, 2, 3)
        # and no staging files were left behind:
        assert not list(tmp_path.glob("selftest/*.tmp"))

    def test_interrupted_write_leaves_no_temp_file(self, tmp_path, point):
        store = ResultStore(tmp_path)

        class Boom:
            """json.dump cannot serialize this; the write must clean up."""

        with pytest.raises(TypeError):
            store.store(point, Boom())
        assert store.load(point) is MISS
        assert not list(tmp_path.glob("selftest/*"))


class TestMaintenance:
    def test_layout_is_kind_then_key(self, tmp_path, point):
        store = ResultStore(tmp_path)
        path = store.store(point, 1)
        assert path.parent.name == "selftest"
        assert path.name == f"{store.key_for(point)}.json"
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["params"] == point.as_dict()
        assert entry["result"] == 1

    def test_clear_removes_everything(self, tmp_path):
        store = ResultStore(tmp_path)
        for payload in range(3):
            store.store(SweepPoint.make("selftest", {"payload": payload}), payload)
        assert len(store) == 3
        assert store.clear() == 3
        assert len(store) == 0

    def test_len_on_missing_root(self, tmp_path):
        assert len(ResultStore(tmp_path / "never-created")) == 0


class TestEntryMeta:
    def test_meta_round_trips(self, tmp_path, point):
        store = ResultStore(tmp_path)
        store.store(point, {"x": 1}, elapsed_s=0.5, meta={"content_hash": "abc"})
        entry = store.load_entry(point)
        assert entry.meta == {"content_hash": "abc"}
        assert entry.elapsed_s == 0.5

    def test_v2_entry_loads_with_absent_meta(self, tmp_path, point):
        """Old caches (entry v2: no meta field) still load."""
        import json

        store = ResultStore(tmp_path)
        path = store.store(point, {"x": 1}, elapsed_s=0.5)
        entry = json.loads(path.read_text())
        entry.pop("meta", None)
        entry["entry_version"] = 2
        path.write_text(json.dumps(entry))
        loaded = store.load_entry(point)
        assert loaded.result == {"x": 1}
        assert loaded.elapsed_s == 0.5
        assert loaded.meta is None

    def test_garbage_meta_reads_as_absent(self, tmp_path, point):
        import json

        store = ResultStore(tmp_path)
        path = store.store(point, "ok", meta={"fine": 1})
        entry = json.loads(path.read_text())
        entry["meta"] = ["not", "a", "dict"]
        path.write_text(json.dumps(entry))
        assert store.load_entry(point).meta is None


class TestRecordedTimes:
    def test_returns_params_and_elapsed(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(
            SweepPoint.make("selftest", {"payload": 1, "app": "em3d"}),
            "a",
            elapsed_s=1.5,
        )
        store.store(SweepPoint.make("selftest", {"payload": 2}), "b", elapsed_s=2.5)
        store.store(SweepPoint.make("selftest", {"payload": 3}), "c")  # untimed
        times = store.recorded_times("selftest")
        assert sorted(elapsed for _p, elapsed in times) == [1.5, 2.5]
        apps = {params.get("app") for params, _e in times}
        assert apps == {"em3d", None}

    def test_other_kinds_and_missing_dir_are_empty(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(SweepPoint.make("selftest", {"payload": 1}), "a", elapsed_s=1.0)
        assert store.recorded_times("accuracy") == []
        assert ResultStore(tmp_path / "nope").recorded_times("selftest") == []

    def test_unreadable_entries_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(
            SweepPoint.make("selftest", {"payload": 1}), "a", elapsed_s=1.0
        )
        (path.parent / "junk.json").write_text("{not json")
        assert len(store.recorded_times("selftest")) == 1

    def test_reads_across_fingerprints(self, tmp_path):
        """Stale-fingerprint entries still contribute timing signal."""
        old = ResultStore(tmp_path, fingerprint={"version": "0.0"})
        old.store(SweepPoint.make("selftest", {"payload": 1}), "a", elapsed_s=4.0)
        fresh = ResultStore(tmp_path)
        assert [e for _p, e in fresh.recorded_times("selftest")] == [4.0]
