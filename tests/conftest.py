"""Shared fixtures for the reproduction's test suite."""

import pytest

from repro.common.rng import DeterministicRng
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(2024, "tests")


@pytest.fixture
def producer_consumer_script() -> BlockScript:
    """P3 writes, P1/P2 read — the paper's running example (10 rounds)."""
    script = BlockScript(block=0x100)
    for _ in range(10):
        script.append(WriteEpoch(writer=3))
        script.append(ReadEpoch(readers=(1, 2)))
    return script


@pytest.fixture
def migratory_script() -> BlockScript:
    """Read+write visits rotating over three processors (10 rounds)."""
    script = BlockScript(block=0x200)
    for _ in range(10):
        for visitor in (0, 1, 2):
            script.append(ReadEpoch(readers=(visitor,)))
            script.append(WriteEpoch(writer=visitor))
    return script
