"""Shared fixtures and collection hooks for the reproduction's tests."""

import sys
from pathlib import Path

import pytest

# Make ``tests.strategies`` importable no matter where pytest is invoked
# from (the repo root is only on sys.path when it is the cwd).
_REPO_ROOT = str(Path(__file__).resolve().parent.parent)
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from repro.common.rng import DeterministicRng
from repro.protocol.epochs import BlockScript, ReadEpoch, WriteEpoch


def pytest_collection_modifyitems(items):
    """Integration tests regenerate paper results — mark them slow."""
    for item in items:
        if "integration" in item.path.parts:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(autouse=True)
def _isolate_trace_cache():
    """Reset the process-wide trace-cache configuration around each test.

    The CLI and the HTTP service configure the compiled-trace cache
    globally (so forked sweep workers inherit it); without this, a test
    that boots either would leave later tests silently reading a
    tmp-path cache directory.
    """
    import os

    from repro.trace import cache

    saved = cache._configured
    saved_env = os.environ.get(cache.TRACE_CACHE_ENV)
    yield
    cache._configured = saved
    if saved_env is None:
        os.environ.pop(cache.TRACE_CACHE_ENV, None)
    else:
        os.environ[cache.TRACE_CACHE_ENV] = saved_env


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(2024, "tests")


@pytest.fixture
def producer_consumer_script() -> BlockScript:
    """P3 writes, P1/P2 read — the paper's running example (10 rounds)."""
    script = BlockScript(block=0x100)
    for _ in range(10):
        script.append(WriteEpoch(writer=3))
        script.append(ReadEpoch(readers=(1, 2)))
    return script


@pytest.fixture
def migratory_script() -> BlockScript:
    """Read+write visits rotating over three processors (10 rounds)."""
    script = BlockScript(block=0x200)
    for _ in range(10):
        for visitor in (0, 1, 2):
            script.append(ReadEpoch(readers=(visitor,)))
            script.append(WriteEpoch(writer=visitor))
    return script
